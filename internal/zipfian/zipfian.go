// Package zipfian implements the Zipfian key-distribution generator used
// by YCSB. The parameter theta matches the YCSB/DBx1000 convention used in
// the paper (§5.4): theta = 0 is uniform; theta = 0.6/0.8 make 10% of the
// tuples attract ~40%/~60% of accesses; theta = 0.9 and 0.99 are the
// high-contention settings the paper evaluates.
//
// The implementation follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94) — the same algorithm
// YCSB and DBx1000 use — with the zeta constants precomputed once per
// (n, theta) so that per-key generation is O(1).
package zipfian

import (
	"math"
	"math/rand"
)

// Zipfian generates values in [0, n) with Zipfian skew theta.
type Zipfian struct {
	n     uint64
	theta float64

	alpha, zetan, eta, half float64
	rng                     *rand.Rand
}

// New creates a generator over [0, n) with skew theta (0 ≤ theta < 1) and
// the given seed. theta = 0 degenerates to uniform.
func New(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		panic("zipfian: n must be positive")
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	if theta > 0 {
		z.zetan = zeta(n, theta)
		z.alpha = 1.0 / (1.0 - theta)
		z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
		z.half = math.Pow(0.5, theta)
	}
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next key in [0, n). Keys are not scrambled: key 0 is
// the hottest, matching DBx1000's YCSB loader, which relies on callers to
// map hot ranks onto row ids.
func (z *Zipfian) Next() uint64 {
	if z.theta == 0 {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+z.half {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the generator's range size.
func (z *Zipfian) N() uint64 { return z.n }

// Theta returns the generator's skew.
func (z *Zipfian) Theta() float64 { return z.theta }

// HotSetFraction estimates the fraction of accesses that fall on the
// hottest fracKeys fraction of the keyspace, by Monte-Carlo sampling. Used
// by tests to validate the ~40%/~60% calibration the paper quotes.
func (z *Zipfian) HotSetFraction(fracKeys float64, samples int) float64 {
	cut := uint64(float64(z.n) * fracKeys)
	hit := 0
	for i := 0; i < samples; i++ {
		if z.Next() < cut {
			hit++
		}
	}
	return float64(hit) / float64(samples)
}
