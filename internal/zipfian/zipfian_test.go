package zipfian

import (
	"testing"
	"testing/quick"
)

func TestUniformWhenThetaZero(t *testing.T) {
	z := New(1000, 0, 1)
	frac := z.HotSetFraction(0.1, 200000)
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("theta=0: hottest 10%% got %.3f of accesses, want ≈0.10", frac)
	}
}

// TestPaperCalibration checks the skew levels the paper quotes in §5.4:
// with theta 0.6 / 0.8 the hottest 10% of tuples attract ~40% / ~60% of
// accesses.
func TestPaperCalibration(t *testing.T) {
	cases := []struct {
		theta  float64
		lo, hi float64
	}{
		{0.6, 0.32, 0.48},
		{0.8, 0.52, 0.68},
	}
	for _, c := range cases {
		z := New(1_000_000, c.theta, 42)
		frac := z.HotSetFraction(0.1, 300000)
		if frac < c.lo || frac > c.hi {
			t.Errorf("theta=%.1f: hot-10%% fraction = %.3f, want in [%.2f,%.2f]",
				c.theta, frac, c.lo, c.hi)
		}
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		z := New(100, 0.9, seed)
		for i := 0; i < 1000; i++ {
			if z.Next() >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneSkew(t *testing.T) {
	// Higher theta concentrates more mass on the head.
	prev := 0.0
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		z := New(10000, theta, 7)
		frac := z.HotSetFraction(0.01, 100000)
		if frac+0.02 < prev {
			t.Fatalf("theta=%.2f: hot fraction %.3f decreased from %.3f", theta, frac, prev)
		}
		prev = frac
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(1000, 0.9, 5), New(1000, 0.9, 5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestAccessors(t *testing.T) {
	z := New(123, 0.7, 1)
	if z.N() != 123 || z.Theta() != 0.7 {
		t.Fatalf("accessors: N=%d theta=%f", z.N(), z.Theta())
	}
}

func TestPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(0, 0.5, 1)
}
